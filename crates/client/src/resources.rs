//! CPU / GPU / memory models, calibrated to Figure 8.
//!
//! The paper's resource findings are linear load responses with
//! platform-specific slopes: Hubs (a browser app) has the highest CPU and
//! saturates near 100 % at 15 users; AltspaceVR prefers the GPU for the
//! extra load (+25 % GPU vs +15 % CPU from 1→15 users) while the others
//! lean on the CPU (+~20 % CPU, +10-15 % GPU); memory grows ~10 MB per
//! avatar with Worlds owning the largest footprint (~2 GB at 15 users).
//! A [`PerfProfile`] holds those calibrated coefficients per platform.


/// Instantaneous client load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderLoad {
    /// Avatars currently visible in the viewport (self excluded).
    pub visible_avatars: f64,
    /// Data-channel downlink rate being decoded, in Mbps.
    pub downlink_mbps: f64,
    /// Whether an interactive game is running (adds simulation load).
    pub game_active: bool,
    /// Extra reconciliation work in `[0, 1]` — the "prioritize processing
    /// of missing critical information" load the paper infers when the
    /// downlink is throttled (§8.1).
    pub reconciliation: f64,
}

impl RenderLoad {
    /// A quiet scene with `n` visible avatars.
    pub fn avatars(n: f64) -> Self {
        RenderLoad { visible_avatars: n, downlink_mbps: 0.0, game_active: false, reconciliation: 0.0 }
    }
}

/// Calibrated per-platform performance coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfProfile {
    /// Platform label.
    pub name: &'static str,
    /// Frame time with an empty scene, ms.
    pub base_frame_ms: f64,
    /// Added frame time per visible avatar, ms.
    pub per_avatar_frame_ms: f64,
    /// CPU utilisation with one user alone, %.
    pub base_cpu: f64,
    /// Added CPU per visible avatar, %.
    pub per_avatar_cpu: f64,
    /// GPU utilisation with one user alone, %.
    pub base_gpu: f64,
    /// Added GPU per visible avatar, %.
    pub per_avatar_gpu: f64,
    /// Memory footprint with one user alone, MB.
    pub base_memory_mb: f64,
    /// Added memory per avatar, MB (~10, §6.2).
    pub per_avatar_memory_mb: f64,
    /// Browser-based app (Hubs): extra per-byte processing cost.
    pub is_web: bool,
}

impl PerfProfile {
    /// Mozilla Hubs: browser app, highest CPU, steepest FPS decline.
    pub fn hubs() -> Self {
        PerfProfile {
            name: "Hubs",
            base_frame_ms: 11.3,
            per_avatar_frame_ms: 1.36,
            base_cpu: 75.0,
            per_avatar_cpu: 1.8,
            base_gpu: 62.0,
            per_avatar_gpu: 0.95,
            base_memory_mb: 1_250.0,
            per_avatar_memory_mb: 10.0,
            is_web: true,
        }
    }

    /// Horizon Worlds: best-optimised renderer despite the most complex
    /// avatar (smallest FPS drop, ~25 % from 1→15 users).
    pub fn worlds() -> Self {
        PerfProfile {
            name: "Worlds",
            base_frame_ms: 12.0,
            per_avatar_frame_ms: 0.46,
            base_cpu: 62.0,
            per_avatar_cpu: 1.45,
            base_gpu: 72.0,
            per_avatar_gpu: 1.0,
            base_memory_mb: 1_850.0,
            per_avatar_memory_mb: 11.0,
            is_web: false,
        }
    }

    /// VRChat.
    pub fn vrchat() -> Self {
        PerfProfile {
            name: "VRChat",
            base_frame_ms: 12.0,
            per_avatar_frame_ms: 0.57,
            base_cpu: 65.0,
            per_avatar_cpu: 1.45,
            base_gpu: 55.0,
            per_avatar_gpu: 0.85,
            base_memory_mb: 1_300.0,
            per_avatar_memory_mb: 10.0,
            is_web: false,
        }
    }

    /// AltspaceVR: shifts the extra load to the GPU (+25 % GPU vs +15 %
    /// CPU from 1→15 users, §6.2).
    pub fn altspace() -> Self {
        PerfProfile {
            name: "AltspaceVR",
            base_frame_ms: 12.0,
            per_avatar_frame_ms: 0.66,
            base_cpu: 55.0,
            per_avatar_cpu: 1.05,
            base_gpu: 60.0,
            per_avatar_gpu: 1.8,
            base_memory_mb: 1_050.0,
            per_avatar_memory_mb: 9.0,
            is_web: false,
        }
    }

    /// Rec Room.
    pub fn recroom() -> Self {
        PerfProfile {
            name: "Rec Room",
            base_frame_ms: 12.0,
            per_avatar_frame_ms: 0.84,
            base_cpu: 52.0,
            per_avatar_cpu: 1.5,
            base_gpu: 58.0,
            per_avatar_gpu: 0.85,
            base_memory_mb: 1_350.0,
            per_avatar_memory_mb: 10.0,
            is_web: false,
        }
    }

    /// All five profiles.
    pub fn all() -> [PerfProfile; 5] {
        [Self::altspace(), Self::hubs(), Self::recroom(), Self::vrchat(), Self::worlds()]
    }
}

/// A resource measurement at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceReading {
    /// CPU utilisation, % (capped at 100).
    pub cpu: f64,
    /// GPU utilisation, %.
    pub gpu: f64,
    /// Memory footprint, MB.
    pub memory_mb: f64,
    /// Uncapped CPU demand, % — above 100 means the CPU is the
    /// bottleneck and frame times inflate.
    pub cpu_demand: f64,
}

/// The resource model: profile coefficients × load.
#[derive(Debug, Clone, Copy)]
pub struct ResourceModel {
    /// The platform's coefficients.
    pub profile: PerfProfile,
    /// Device compute scale (1.0 = Quest 2); a faster device divides the
    /// avatar-proportional load.
    pub compute_scale: f64,
}

impl ResourceModel {
    /// Create for a profile on a device.
    pub fn new(profile: PerfProfile, compute_scale: f64) -> Self {
        assert!(compute_scale > 0.0);
        ResourceModel { profile, compute_scale }
    }

    /// Evaluate the model under a load.
    pub fn read(&self, load: RenderLoad) -> ResourceReading {
        let p = &self.profile;
        let n = load.visible_avatars.max(0.0);
        // Per-byte decode cost: web apps pay ~5 %/Mbps, native ~2 %/Mbps.
        let decode = load.downlink_mbps * if p.is_web { 5.0 } else { 2.0 };
        let game = if load.game_active { 8.0 } else { 0.0 };
        let recon = load.reconciliation.clamp(0.0, 1.0) * 30.0;
        let cpu_demand =
            p.base_cpu + (n * p.per_avatar_cpu + decode + game + recon) / self.compute_scale;
        let gpu = p.base_gpu + (n * p.per_avatar_gpu + game * 0.5) / self.compute_scale;
        ResourceReading {
            cpu: cpu_demand.min(100.0),
            gpu: gpu.min(100.0),
            memory_mb: p.base_memory_mb + n * p.per_avatar_memory_mb,
            cpu_demand,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta_1_to_15(profile: PerfProfile) -> (f64, f64) {
        let model = ResourceModel::new(profile, 1.0);
        let one = model.read(RenderLoad::avatars(0.0));
        let fifteen = model.read(RenderLoad::avatars(14.0));
        (fifteen.cpu - one.cpu, fifteen.gpu - one.gpu)
    }

    #[test]
    fn hubs_cpu_saturates_near_100_at_15_users() {
        let model = ResourceModel::new(PerfProfile::hubs(), 1.0);
        // Include the decode load of ~0.8 Mbps of avatar data at 15 users.
        let r = model.read(RenderLoad {
            visible_avatars: 14.0,
            downlink_mbps: 0.8,
            game_active: false,
            reconciliation: 0.0,
        });
        assert!(r.cpu > 95.0, "Hubs CPU {}", r.cpu);
        let one = model.read(RenderLoad::avatars(0.0));
        assert!(one.cpu >= 70.0, "browser baseline {}", one.cpu);
    }

    #[test]
    fn altspace_prefers_gpu_for_extra_load() {
        // §6.2: AltspaceVR CPU +15 %, GPU +25 %; others CPU ~+20 %,
        // GPU +10-15 %.
        let (d_cpu, d_gpu) = delta_1_to_15(PerfProfile::altspace());
        assert!(d_gpu > d_cpu, "AltspaceVR GPU-leaning: {d_cpu} vs {d_gpu}");
        assert!((d_cpu - 15.0).abs() < 3.0);
        assert!((d_gpu - 25.0).abs() < 3.0);
        for p in [PerfProfile::worlds(), PerfProfile::vrchat(), PerfProfile::recroom()] {
            let (dc, dg) = delta_1_to_15(p);
            assert!(dc > dg, "{} is CPU-leaning: {dc} vs {dg}", p.name);
            assert!((dc - 20.0).abs() < 3.0, "{}: {dc}", p.name);
            assert!((9.0..=16.0).contains(&dg), "{}: {dg}", p.name);
        }
    }

    #[test]
    fn memory_grows_ten_mb_per_avatar() {
        for p in PerfProfile::all() {
            let model = ResourceModel::new(p, 1.0);
            let one = model.read(RenderLoad::avatars(0.0));
            let fifteen = model.read(RenderLoad::avatars(14.0));
            let extra = fifteen.memory_mb - one.memory_mb;
            // §6.2: <150 MB extra for 14 more users (~10 MB each).
            assert!(extra <= 160.0, "{}: {extra}", p.name);
            assert!(extra >= 120.0, "{}: {extra}", p.name);
        }
    }

    #[test]
    fn worlds_owns_largest_memory_footprint() {
        let readings: Vec<(&str, f64)> = PerfProfile::all()
            .iter()
            .map(|p| (p.name, ResourceModel::new(*p, 1.0).read(RenderLoad::avatars(14.0)).memory_mb))
            .collect();
        let worlds = readings.iter().find(|(n, _)| *n == "Worlds").unwrap().1;
        for (name, mem) in &readings {
            if *name != "Worlds" {
                assert!(worlds > *mem, "Worlds {worlds} vs {name} {mem}");
            }
        }
        // ~2 GB at 15 users — about a third of Quest 2's 6 GB.
        assert!((worlds - 2_000.0).abs() < 120.0, "Worlds mem {worlds}");
    }

    #[test]
    fn reconciliation_load_can_saturate_cpu() {
        // Fig. 12: with the downlink throttled, CPU reaches 100 %.
        let model = ResourceModel::new(PerfProfile::worlds(), 1.0);
        let r = model.read(RenderLoad {
            visible_avatars: 1.0,
            downlink_mbps: 0.3,
            game_active: true,
            reconciliation: 1.0,
        });
        assert!(r.cpu >= 99.9, "cpu {}", r.cpu);
        assert!(r.cpu_demand > 100.0, "demand overflows: {}", r.cpu_demand);
    }

    #[test]
    fn faster_device_lowers_utilisation() {
        let quest = ResourceModel::new(PerfProfile::vrchat(), 1.0);
        let pc = ResourceModel::new(PerfProfile::vrchat(), 3.0);
        let load = RenderLoad::avatars(10.0);
        assert!(pc.read(load).cpu < quest.read(load).cpu);
        assert!(pc.read(load).gpu < quest.read(load).gpu);
    }

    #[test]
    fn utilisation_is_capped_but_demand_is_not() {
        let model = ResourceModel::new(PerfProfile::hubs(), 1.0);
        let r = model.read(RenderLoad {
            visible_avatars: 50.0,
            downlink_mbps: 3.0,
            game_active: true,
            reconciliation: 1.0,
        });
        assert_eq!(r.cpu, 100.0);
        assert!(r.cpu_demand > 130.0);
    }
}
