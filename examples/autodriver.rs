//! AutoDriver-style scripted experiment (§9): define user behaviour as a
//! plain-text script, play it back deterministically, and analyse the
//! capture — the paper's plan for crowd-sourced measurements.
//!
//! ```sh
//! cargo run --release --example autodriver
//! ```

use metaverse_measurement::core::analysis::RateSeries;
use metaverse_measurement::netsim::capture::{by_server, Direction};
use metaverse_measurement::netsim::SimDuration;
use metaverse_measurement::platform::autodriver::parse_script;
use metaverse_measurement::platform::session::run_session;
use metaverse_measurement::platform::{PlatformConfig, SessionConfig};

/// A compressed §6.1 experiment: joins every 12 s, turn at 60 s.
const SCRIPT: &str = "\
# Fig. 6 shape, compressed: five users join, U1 turns away at 60 s
1   join 0
12  join 1
24  join 2
36  join 3
48  join 4
60  turn 0 180
";

fn main() {
    println!("Playing back AutoDriver script on AltspaceVR:\n{SCRIPT}");
    let behaviors = parse_script(SCRIPT).expect("script parses");

    let mut cfg = SessionConfig::walk_and_chat(
        PlatformConfig::altspace(),
        5,
        SimDuration::from_secs(75),
        0xAD,
    );
    cfg.behaviors = behaviors;
    let result = run_session(&cfg);

    let data = by_server(&result.users[0].ap_records, result.data_server_node);
    let down = RateSeries::from_records(&data, Direction::Downlink, SimDuration::from_secs(75));
    println!("U1 downlink, Kbps per 5 s:");
    for (i, chunk) in down.kbps.chunks(5).enumerate() {
        let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
        let bar = "#".repeat((mean / 2.0) as usize);
        println!("  {:>3}s {:>7.1}  {bar}", i * 5, mean);
    }
    println!();
    println!(
        "Each join raises the downlink; the 180° turn at 60 s empties U1's viewport\n\
         and AltspaceVR's viewport-adaptive server stops forwarding (Fig. 6(e))."
    );
}
