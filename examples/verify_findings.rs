//! Verify every Takeaway and Implication of the paper against the
//! simulation, printing a pass/fail checklist.
//!
//! ```sh
//! cargo run --release --example verify_findings
//! ```

use metaverse_measurement::core::experiments::takeaways;

fn main() {
    let report = takeaways::run();
    println!("{report}");
    std::process::exit(if report.all_hold() { 0 } else { 1 });
}
