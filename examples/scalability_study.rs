//! Scalability study (§6): how throughput, FPS, and client resources
//! respond as users join — and how the paper's proposed remote-rendering
//! architecture changes the picture.
//!
//! ```sh
//! cargo run --release --example scalability_study
//! ```

use metaverse_measurement::core::experiments::ablations::{remote_rendering, AblationConfig};
use metaverse_measurement::core::experiments::fig7::{run as sweep, ScalingConfig};
use metaverse_measurement::PlatformId;

fn main() {
    let cfg = ScalingConfig {
        user_counts: vec![1, 2, 3, 5, 7, 10],
        trials: 2,
        duration_s: 45,
        seed: 7,
    };

    println!("== Per-platform user-count sweeps (Fig. 7/8 shape) ==\n");
    for id in [PlatformId::VrChat, PlatformId::Hubs, PlatformId::Worlds] {
        let report = sweep(id, &cfg);
        println!("{report}");
        let (slope, r2) = report.downlink_linearity();
        println!(
            "  → {}: downlink grows {:.1} Kbps per user (R²={:.3}); the per-avatar\n    rate the server forwards to everyone, unprocessed.\n",
            id.name(),
            slope,
            r2
        );
    }

    println!("== §6.3 ablation: direct forwarding vs remote rendering ==\n");
    let ab = remote_rendering(&AblationConfig {
        user_counts: vec![2, 5, 10],
        trials: 1,
        duration_s: 40,
        video_mbps: 8.0,
        seed: 7,
    });
    println!("{ab}");
    println!("With remote rendering, downlink and client load depend on the video");
    println!("quality, not the user count — the paper's proposed path to scale.");
}
