//! Platform survey (§4): features, protocols, server infrastructure,
//! anycast detection, and RTTs — Tables 1 and 2 plus the Figure 2
//! channel timelines.
//!
//! ```sh
//! cargo run --release --example platform_survey
//! ```

use metaverse_measurement::core::experiments::fig2::{run_all, Fig2Config};
use metaverse_measurement::core::experiments::{table1, table2};

fn main() {
    println!("{}", table1::run());

    println!("{}", table2::run(table2::Table2Config::full()));
    println!("(anycast rows show '-' for location: geolocating an anycast IP is");
    println!("meaningless — the same address answers from many PoPs)\n");

    println!("== Fig. 2: control vs data channels around event join ==\n");
    for rep in run_all(Fig2Config { duration_s: 120, join_s: 60, seed: 0xF162 }) {
        println!("{rep}");
        println!(
            "  welcome-page control {:.1} Kbps; data before join {:.2} Kbps; data during event {:.1} Kbps\n",
            rep.control_on_welcome(),
            rep.data_down_before_event(),
            rep.data_down_during_event()
        );
    }
}
