//! End-to-end latency study (§7): the finger-touch measurement, its
//! sender/server/receiver breakdown, and the clock-sync procedure that
//! makes cross-headset timestamps comparable.
//!
//! ```sh
//! cargo run --release --example latency_breakdown
//! ```

use metaverse_measurement::core::clocksync::{sync_pair, DeviceClock};
use metaverse_measurement::core::experiments::fig11::{run_all, Fig11Config};
use metaverse_measurement::core::experiments::table4::{run, Table4Config};
use metaverse_measurement::netsim::{SimDuration, SimRng, SimTime};

fn main() {
    println!("== §7 prerequisite: syncing two unsynchronised Quest 2 clocks ==\n");
    let mut rng = SimRng::seed_from_u64(11);
    let u1 = DeviceClock::new(1_700_000_000_000, 18.0);
    let u2 = DeviceClock::new(-3_600_000_000, -12.0);
    let now = SimTime::from_secs(30);
    let est = sync_pair(&u1, &u2, now, SimDuration::from_millis(4), 7, &mut rng);
    let truth = u1.true_offset_at(now) - u2.true_offset_at(now);
    println!(
        "relative offset: estimated {est} µs vs true {truth} µs (error {} µs —\nmillisecond-level, as the ADB method achieves)\n",
        (est - truth).abs()
    );

    println!("== Table 4: E2E latency breakdown ==\n");
    let rep = run(Table4Config { trials: 2, actions: 12, seed: 0x7AB1E4 });
    println!("{rep}");

    println!("== Fig. 11: latency vs user count ==\n");
    let rep11 = run_all(&Fig11Config {
        user_counts: vec![2, 4, 6],
        actions: 8,
        trials: 1,
        seed: 0xF1611,
    });
    println!("{rep11}");
    for s in &rep11.series {
        println!("  {}: per-step deltas {:?} ms", s.platform.name(), s.deltas().iter().map(|d| (d * 10.0).round() / 10.0).collect::<Vec<_>>());
    }
    println!("\nThe deltas grow with each added user — server queueing plus");
    println!("receiver-side rendering load, the paper's latency scalability issue.");
}
