//! Network disruption study (§8): throttle Horizon Worlds' links while a
//! shooter game runs, reproducing both Figure 12 (downlink staircase) and
//! Figure 13's TCP-priority interplay.
//!
//! ```sh
//! cargo run --release --example network_disruption
//! ```

use metaverse_measurement::core::experiments::fig12::{run as run_fig12, Fig12Config};
use metaverse_measurement::core::experiments::fig13::{
    run_tcp_priority, run_uplink_caps, TcpPriorityConfig, UplinkCapsConfig,
};

fn main() {
    println!("== Fig. 12: downlink staircase on Worlds' shooter ==\n");
    let cfg12 = Fig12Config {
        stages_mbps: vec![1.0, 0.5, 0.2],
        stage_s: 20,
        tail_s: 20,
        start_s: 15,
        seed: 3,
    };
    let r12 = run_fig12(&cfg12);
    println!("{r12}");
    for (k, cap) in cfg12.stages_mbps.iter().enumerate() {
        let (a, b) = r12.stage_window(k);
        println!(
            "  cap {:>4} Mbps → downlink {:>5.2} Mbps, CPU {:>5.1}%, FPS {:>5.1}",
            cap,
            r12.down_in_stage(k),
            Fig12ReportMean::cpu(&r12, a, b),
            Fig12ReportMean::fps(&r12, a, b),
        );
    }

    println!("\n== Fig. 13 (top): uplink staircase ==\n");
    let r13 = run_uplink_caps(&UplinkCapsConfig {
        stages_mbps: vec![1.2, 0.7, 0.3],
        stage_s: 20,
        start_s: 15,
        tail_s: 15,
        seed: 3,
    });
    println!("{r13}");

    println!("== Fig. 13 (bottom): TCP-only impairment ==\n");
    let cfg = TcpPriorityConfig::quick();
    let r = run_tcp_priority(&cfg);
    println!("{r}");
    let delay = cfg.delays_s[0] as usize;
    let gap = r.longest_udp_gap(cfg.start_s as usize, (cfg.start_s + cfg.stage_s) as usize);
    println!("TCP delayed {delay}s → UDP transmission gap of {gap}s (Worlds gates UDP");
    println!("behind TCP delivery). After 100% TCP loss the UDP session died at");
    println!("{:?}s and never recovered, with the in-game countdown frozen: {}.",
        r.frozen_at_s, r.countdown_went_stale);
}

/// Small helpers to average monitor series over a window.
struct Fig12ReportMean;

impl Fig12ReportMean {
    fn cpu(r: &metaverse_measurement::core::experiments::fig12::Fig12Report, a: usize, b: usize) -> f64 {
        metaverse_measurement::core::experiments::fig12::Fig12Report::mean(&r.cpu, a, b)
    }
    fn fps(r: &metaverse_measurement::core::experiments::fig12::Fig12Report, a: usize, b: usize) -> f64 {
        metaverse_measurement::core::experiments::fig12::Fig12Report::mean(&r.fps, a, b)
    }
}
