//! Regenerate the paper's tables and figures through the parallel
//! experiment harness (`svr-harness`).
//!
//! ```sh
//! cargo run --release --example reproduce_all                  # quick fidelity, all experiments
//! cargo run --release --example reproduce_all -- --full        # paper-scale sweeps
//! cargo run --release --example reproduce_all -- --list        # what can run
//! cargo run --release --example reproduce_all -- \
//!     --only fig7,table3 --jobs 8 --out artifacts/             # JSON artifacts + telemetry
//! ```
//!
//! Artifacts are byte-identical for any `--jobs` value; schedule-
//! dependent numbers (wall time, trials/sec, worker utilisation) go to
//! `BENCH_harness.json` only. The full run's console output is the
//! source of `EXPERIMENTS.md`.

use std::path::PathBuf;
use std::process::ExitCode;

use svr_harness::{registry, Fidelity, RunCtx, RunOptions};

struct Args {
    fidelity: Fidelity,
    seed: u64,
    jobs: usize,
    only: Option<Vec<String>>,
    out: Option<PathBuf>,
    list: bool,
}

const USAGE: &str = "\
usage: reproduce_all [--full] [--seed N] [--jobs N] [--only a,b,c] [--out DIR] [--list]

  --full        paper-scale sweeps (default: quick smoke fidelity)
  --seed N      remix every experiment's base seed (default 0 = published seeds)
  --jobs N      worker threads (default: available parallelism)
  --only a,b,c  run only the named experiments (see --list)
  --out DIR     write one <experiment>.json per experiment + BENCH_harness.json
  --list        print the registry and exit";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        fidelity: Fidelity::Quick,
        seed: 0,
        jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        only: None,
        out: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--full" => args.fidelity = Fidelity::Full,
            "--quick" => args.fidelity = Fidelity::Quick,
            "--list" => args.list = true,
            "--seed" => {
                let v = value("--seed")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
            }
            "--jobs" => {
                let v = value("--jobs")?;
                let n: usize = v.parse().map_err(|_| format!("bad --jobs value `{v}`"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
                args.jobs = n;
            }
            "--only" => {
                let v = value("--only")?;
                let names: Vec<String> =
                    v.split(',').map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
                if names.is_empty() {
                    return Err("--only needs at least one experiment name".to_string());
                }
                args.only = Some(names);
            }
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        println!("Registered experiments (paper order):");
        for exp in registry::all() {
            println!("  {:<11} {}", exp.name, exp.artefact);
        }
        return ExitCode::SUCCESS;
    }

    let opts = RunOptions {
        ctx: RunCtx { fidelity: args.fidelity, seed: args.seed },
        jobs: args.jobs,
        only: args.only.clone(),
    };
    println!(
        "Reproducing {} at {} fidelity, {} worker(s), seed {}\n",
        args.only.as_ref().map(|o| o.join(", ")).unwrap_or_else(|| "all tables & figures".into()),
        if args.fidelity == Fidelity::Full { "FULL (paper)" } else { "QUICK" },
        args.jobs,
        args.seed,
    );

    let output = match svr_harness::run_selected(&opts) {
        Ok(output) => output,
        Err(unknown) => {
            eprintln!("error: {unknown}");
            return ExitCode::FAILURE;
        }
    };

    for artifact in &output.artifacts {
        println!("{}", artifact.display);
    }

    if let Some(out_dir) = &args.out {
        match svr_harness::write_artifacts(out_dir, &output) {
            Ok(paths) => {
                println!("Wrote {} artifact file(s) to {}:", paths.len(), out_dir.display());
                for path in paths {
                    println!("  {}", path.display());
                }
            }
            Err(error) => {
                eprintln!("error: writing artifacts to {}: {error}", out_dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
