//! Regenerate every table and figure of the paper in one run.
//!
//! ```sh
//! cargo run --release --example reproduce_all          # quick fidelity
//! REPRO_FULL=1 cargo run --release --example reproduce_all  # paper fidelity
//! ```
//!
//! The output of the full run is the source of `EXPERIMENTS.md`.

use metaverse_measurement::core::experiments::*;
use metaverse_measurement::PlatformId;

fn main() {
    let full = std::env::var("REPRO_FULL").map(|v| v == "1").unwrap_or(false);
    println!(
        "Reproducing all tables & figures at {} fidelity\n",
        if full { "FULL (paper)" } else { "QUICK" }
    );

    println!("{}", table1::run());

    let t2 = if full { table2::Table2Config::full() } else { table2::Table2Config::quick() };
    println!("{}", table2::run(t2));

    println!("{}", vantage::run());

    let f2 = if full { fig2::Fig2Config::full() } else { fig2::Fig2Config::quick() };
    for rep in fig2::run_all(f2) {
        println!("{rep}");
    }

    let t3 = if full { table3::Table3Config::full() } else { table3::Table3Config::quick() };
    println!("{}", table3::run(t3));

    let f3 = if full { fig3::Fig3Config::full() } else { fig3::Fig3Config::quick() };
    for p in [PlatformId::RecRoom, PlatformId::Worlds] {
        println!("{}", fig3::run(p, f3));
    }

    let f6 = if full { fig6::Fig6Config::full() } else { fig6::Fig6Config::quick() };
    for p in PlatformId::ALL {
        let rep = fig6::run(p, fig6::Variant::VisibleThenAway, f6);
        println!("{rep}");
        println!(
            "  downlink before turn {:.1} Kbps → after turn {:.1} Kbps\n",
            rep.down_before_turn(),
            rep.down_after_turn()
        );
    }
    let rep = fig6::run(PlatformId::AltspaceVr, fig6::Variant::AwayThenVisible, f6);
    println!("{rep}");

    let vp = if full { viewport::ViewportConfig::full() } else { viewport::ViewportConfig::quick() };
    println!("{}", viewport::run(PlatformId::AltspaceVr, vp));

    let f7 = if full { fig7::ScalingConfig::full() } else { fig7::ScalingConfig::quick() };
    for rep in fig7::run_all(&f7) {
        println!("{rep}");
    }
    println!("{}", fig8::run(&f7));

    let f9 = if full { fig9::Fig9Config::full() } else { fig9::Fig9Config::quick() };
    println!("{}", fig9::run(&f9));

    let t4 = if full { table4::Table4Config::full() } else { table4::Table4Config::quick() };
    println!("{}", table4::run(t4));

    let f11 = if full { fig11::Fig11Config::full() } else { fig11::Fig11Config::quick() };
    println!("{}", fig11::run_all(&f11));

    let f12 = if full { fig12::Fig12Config::full() } else { fig12::Fig12Config::quick() };
    println!("{}", fig12::run(&f12));

    let caps = if full {
        fig13::UplinkCapsConfig::full()
    } else {
        fig13::UplinkCapsConfig::quick()
    };
    println!("{}", fig13::run_uplink_caps(&caps));
    let tcp = if full {
        fig13::TcpPriorityConfig::full()
    } else {
        fig13::TcpPriorityConfig::quick()
    };
    println!("{}", fig13::run_tcp_priority(&tcp));

    let d = if full { disruption::DisruptionConfig::full() } else { disruption::DisruptionConfig::quick() };
    for p in [PlatformId::Worlds, PlatformId::RecRoom, PlatformId::VrChat] {
        println!("{}", disruption::run(p, &d));
    }

    let ab = if full { ablations::AblationConfig::full() } else { ablations::AblationConfig::quick() };
    println!("{}", ablations::remote_rendering(&ab));
    println!("{}", ablations::p2p_scaling(&ab));
    let di = ablations::device_independence(0xD11CE);
    println!(
        "§5.1 device independence: Quest 2 uplink {:.1} Kbps == PC uplink {:.1} Kbps;\nQuest FPS {:.1} (of 72) vs PC FPS {:.1} (of 60)\n",
        di.quest_up_kbps, di.pc_up_kbps, di.quest_fps, di.pc_fps
    );
    println!("Implication-2 embodiment cost curve (per-avatar Kbps at 30 Hz):");
    for (name, kbps) in ablations::embodiment_cost_curve() {
        println!("  {name:<24} {kbps:>9.1}");
    }
}
