//! Quickstart: simulate two users socialising on each platform and print
//! the headline measurements — the Table 3 view of the world.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use metaverse_measurement::core::analysis::steady_data_rates;
use metaverse_measurement::netsim::{SimDuration, SimTime};
use metaverse_measurement::platform::session::run_session;
use metaverse_measurement::platform::{PlatformConfig, SessionConfig};
use metaverse_measurement::PlatformId;

fn main() {
    println!("Two users walk & chat for 60 simulated seconds on each platform.\n");
    println!(
        "{:<11} {:>10} {:>10} {:>7} {:>7} {:>9}",
        "Platform", "Up Kbps", "Down Kbps", "FPS", "CPU %", "Mem MB"
    );
    println!("{}", "-".repeat(60));

    for id in PlatformId::ALL {
        let cfg = SessionConfig::walk_and_chat(
            PlatformConfig::of(id),
            2,
            SimDuration::from_secs(60),
            42,
        );
        let result = run_session(&cfg);
        let rates = steady_data_rates(
            &result.users[0].ap_records,
            result.data_server_node,
            SimTime::from_secs(15),
            SimTime::from_secs(60),
        );
        let perf = result.users[0].summarize_between(SimTime::from_secs(15), SimTime::from_secs(60));
        println!(
            "{:<11} {:>10.1} {:>10.1} {:>7.1} {:>7.1} {:>9.0}",
            id.name(),
            rates.up_kbps,
            rates.down_kbps,
            perf.avg_fps,
            perf.avg_cpu,
            perf.avg_memory_mb
        );
    }

    println!();
    println!("Paper (Table 3): VRChat 31.4/31.3, AltspaceVR 41.3/40.4,");
    println!("Rec Room 41.7/41.5, Hubs 83.3/83.1, Worlds 752/413 Kbps.");
    println!("Worlds' uplink exceeds its downlink because the server keeps");
    println!("part of the upload (telemetry) and forwards only the avatar data.");
}
