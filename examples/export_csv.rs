//! Export reproduced figure data as CSV for external plotting
//! (gnuplot / matplotlib), the way a measurement-paper artifact would.
//!
//! ```sh
//! cargo run --release --example export_csv [output-dir]
//! ```

use metaverse_measurement::core::experiments::{fig12, fig7};
use metaverse_measurement::core::report::write_csv;
use metaverse_measurement::PlatformId;
use std::fs::File;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let dir: PathBuf =
        std::env::args().nth(1).unwrap_or_else(|| "results".to_string()).into();
    std::fs::create_dir_all(&dir)?;

    // Figure 7/8: the per-platform scaling sweep.
    let cfg = fig7::ScalingConfig {
        user_counts: vec![1, 2, 3, 5, 7, 10],
        trials: 2,
        duration_s: 40,
        seed: 0xC57,
    };
    let mut rows = Vec::new();
    for id in PlatformId::ALL {
        let sweep = fig7::run(id, &cfg);
        for p in &sweep.points {
            rows.push(vec![
                id.name().to_string(),
                p.users.to_string(),
                format!("{:.2}", p.down_kbps.mean),
                format!("{:.2}", p.down_kbps.ci95),
                format!("{:.2}", p.fps.mean),
                format!("{:.2}", p.cpu.mean),
                format!("{:.2}", p.gpu.mean),
                format!("{:.1}", p.memory_mb.mean),
            ]);
        }
        println!("swept {}", id.name());
    }
    let path = dir.join("fig7_fig8_scaling.csv");
    write_csv(
        File::create(&path)?,
        &["platform", "users", "down_kbps", "down_ci95", "fps", "cpu_pct", "gpu_pct", "mem_mb"],
        &rows,
    )?;
    println!("wrote {}", path.display());

    // Figure 12: the Worlds downlink-throttling time series.
    let r12 = fig12::run(&fig12::Fig12Config {
        stages_mbps: vec![1.0, 0.5, 0.2],
        stage_s: 20,
        tail_s: 20,
        start_s: 15,
        seed: 0xC57,
    });
    let n = r12.down_mbps.len().min(r12.cpu.len()).min(r12.fps.len());
    let rows: Vec<Vec<String>> = (0..n)
        .map(|t| {
            vec![
                t.to_string(),
                format!("{:.3}", r12.up_mbps.get(t).copied().unwrap_or(0.0)),
                format!("{:.3}", r12.down_mbps[t]),
                format!("{:.1}", r12.cpu[t]),
                format!("{:.1}", r12.gpu[t]),
                format!("{:.1}", r12.fps[t]),
                format!("{:.1}", r12.stale[t]),
            ]
        })
        .collect();
    let path = dir.join("fig12_disruption_timeseries.csv");
    write_csv(
        File::create(&path)?,
        &["t_s", "up_mbps", "down_mbps", "cpu_pct", "gpu_pct", "fps", "stale_per_s"],
        &rows,
    )?;
    println!("wrote {}", path.display());
    Ok(())
}
