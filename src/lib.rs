//! # metaverse-measurement
//!
//! A full Rust reproduction of *"Are We Ready for Metaverse? A
//! Measurement Study of Social Virtual Reality Platforms"* (IMC 2022):
//! the measurement harness of the paper, running against a from-scratch
//! discrete-event simulation of the five studied platforms (AltspaceVR,
//! Horizon Worlds, Mozilla Hubs, Rec Room, VRChat).
//!
//! This crate is the facade: it re-exports the workspace layers under
//! one name. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ```
//! use metaverse_measurement::platform::{PlatformConfig, SessionConfig};
//! use metaverse_measurement::platform::session::run_session;
//! use metaverse_measurement::netsim::SimDuration;
//!
//! // Two users walk and chat on VRChat for 20 simulated seconds.
//! let cfg = SessionConfig::walk_and_chat(
//!     PlatformConfig::vrchat(), 2, SimDuration::from_secs(20), 42);
//! let result = run_session(&cfg);
//! assert!(result.users[0].avatar_updates_received > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use svr_avatar as avatar;
pub use svr_client as client;
pub use svr_core as core;
pub use svr_geo as geo;
pub use svr_netsim as netsim;
pub use svr_platform as platform;
pub use svr_transport as transport;
pub use svr_world as world;

/// The paper's five platforms, re-exported for convenience.
pub use svr_platform::PlatformId;
