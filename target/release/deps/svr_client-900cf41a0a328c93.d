/root/repo/target/release/deps/svr_client-900cf41a0a328c93.d: crates/client/src/lib.rs crates/client/src/battery.rs crates/client/src/device.rs crates/client/src/monitor.rs crates/client/src/render.rs crates/client/src/resources.rs

/root/repo/target/release/deps/libsvr_client-900cf41a0a328c93.rlib: crates/client/src/lib.rs crates/client/src/battery.rs crates/client/src/device.rs crates/client/src/monitor.rs crates/client/src/render.rs crates/client/src/resources.rs

/root/repo/target/release/deps/libsvr_client-900cf41a0a328c93.rmeta: crates/client/src/lib.rs crates/client/src/battery.rs crates/client/src/device.rs crates/client/src/monitor.rs crates/client/src/render.rs crates/client/src/resources.rs

crates/client/src/lib.rs:
crates/client/src/battery.rs:
crates/client/src/device.rs:
crates/client/src/monitor.rs:
crates/client/src/render.rs:
crates/client/src/resources.rs:
