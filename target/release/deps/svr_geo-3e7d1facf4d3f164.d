/root/repo/target/release/deps/svr_geo-3e7d1facf4d3f164.d: crates/geo/src/lib.rs crates/geo/src/coords.rs crates/geo/src/detect.rs crates/geo/src/dns.rs crates/geo/src/pools.rs crates/geo/src/sites.rs crates/geo/src/traceroute.rs crates/geo/src/whois.rs

/root/repo/target/release/deps/libsvr_geo-3e7d1facf4d3f164.rlib: crates/geo/src/lib.rs crates/geo/src/coords.rs crates/geo/src/detect.rs crates/geo/src/dns.rs crates/geo/src/pools.rs crates/geo/src/sites.rs crates/geo/src/traceroute.rs crates/geo/src/whois.rs

/root/repo/target/release/deps/libsvr_geo-3e7d1facf4d3f164.rmeta: crates/geo/src/lib.rs crates/geo/src/coords.rs crates/geo/src/detect.rs crates/geo/src/dns.rs crates/geo/src/pools.rs crates/geo/src/sites.rs crates/geo/src/traceroute.rs crates/geo/src/whois.rs

crates/geo/src/lib.rs:
crates/geo/src/coords.rs:
crates/geo/src/detect.rs:
crates/geo/src/dns.rs:
crates/geo/src/pools.rs:
crates/geo/src/sites.rs:
crates/geo/src/traceroute.rs:
crates/geo/src/whois.rs:
