/root/repo/target/release/deps/svr_transport-95b5b4643b853f07.d: crates/transport/src/lib.rs crates/transport/src/http.rs crates/transport/src/ping.rs crates/transport/src/rtp.rs crates/transport/src/tcp.rs crates/transport/src/tls.rs crates/transport/src/udp.rs

/root/repo/target/release/deps/libsvr_transport-95b5b4643b853f07.rlib: crates/transport/src/lib.rs crates/transport/src/http.rs crates/transport/src/ping.rs crates/transport/src/rtp.rs crates/transport/src/tcp.rs crates/transport/src/tls.rs crates/transport/src/udp.rs

/root/repo/target/release/deps/libsvr_transport-95b5b4643b853f07.rmeta: crates/transport/src/lib.rs crates/transport/src/http.rs crates/transport/src/ping.rs crates/transport/src/rtp.rs crates/transport/src/tcp.rs crates/transport/src/tls.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/http.rs:
crates/transport/src/ping.rs:
crates/transport/src/rtp.rs:
crates/transport/src/tcp.rs:
crates/transport/src/tls.rs:
crates/transport/src/udp.rs:
