/root/repo/target/release/deps/svr_platform-3ea9c723b4fd6537.d: crates/platform/src/lib.rs crates/platform/src/autodriver.rs crates/platform/src/config.rs crates/platform/src/client_app.rs crates/platform/src/features.rs crates/platform/src/game.rs crates/platform/src/server.rs crates/platform/src/session.rs crates/platform/src/stream.rs

/root/repo/target/release/deps/libsvr_platform-3ea9c723b4fd6537.rlib: crates/platform/src/lib.rs crates/platform/src/autodriver.rs crates/platform/src/config.rs crates/platform/src/client_app.rs crates/platform/src/features.rs crates/platform/src/game.rs crates/platform/src/server.rs crates/platform/src/session.rs crates/platform/src/stream.rs

/root/repo/target/release/deps/libsvr_platform-3ea9c723b4fd6537.rmeta: crates/platform/src/lib.rs crates/platform/src/autodriver.rs crates/platform/src/config.rs crates/platform/src/client_app.rs crates/platform/src/features.rs crates/platform/src/game.rs crates/platform/src/server.rs crates/platform/src/session.rs crates/platform/src/stream.rs

crates/platform/src/lib.rs:
crates/platform/src/autodriver.rs:
crates/platform/src/config.rs:
crates/platform/src/client_app.rs:
crates/platform/src/features.rs:
crates/platform/src/game.rs:
crates/platform/src/server.rs:
crates/platform/src/session.rs:
crates/platform/src/stream.rs:
