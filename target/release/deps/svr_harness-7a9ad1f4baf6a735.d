/root/repo/target/release/deps/svr_harness-7a9ad1f4baf6a735.d: crates/harness/src/lib.rs crates/harness/src/experiment.rs crates/harness/src/json.rs crates/harness/src/registry.rs crates/harness/src/runner.rs crates/harness/src/scheduler.rs crates/harness/src/telemetry.rs

/root/repo/target/release/deps/libsvr_harness-7a9ad1f4baf6a735.rlib: crates/harness/src/lib.rs crates/harness/src/experiment.rs crates/harness/src/json.rs crates/harness/src/registry.rs crates/harness/src/runner.rs crates/harness/src/scheduler.rs crates/harness/src/telemetry.rs

/root/repo/target/release/deps/libsvr_harness-7a9ad1f4baf6a735.rmeta: crates/harness/src/lib.rs crates/harness/src/experiment.rs crates/harness/src/json.rs crates/harness/src/registry.rs crates/harness/src/runner.rs crates/harness/src/scheduler.rs crates/harness/src/telemetry.rs

crates/harness/src/lib.rs:
crates/harness/src/experiment.rs:
crates/harness/src/json.rs:
crates/harness/src/registry.rs:
crates/harness/src/runner.rs:
crates/harness/src/scheduler.rs:
crates/harness/src/telemetry.rs:
