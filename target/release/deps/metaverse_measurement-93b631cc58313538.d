/root/repo/target/release/deps/metaverse_measurement-93b631cc58313538.d: src/lib.rs

/root/repo/target/release/deps/libmetaverse_measurement-93b631cc58313538.rlib: src/lib.rs

/root/repo/target/release/deps/libmetaverse_measurement-93b631cc58313538.rmeta: src/lib.rs

src/lib.rs:
