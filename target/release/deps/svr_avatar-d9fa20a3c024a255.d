/root/repo/target/release/deps/svr_avatar-d9fa20a3c024a255.d: crates/avatar/src/lib.rs crates/avatar/src/codec.rs crates/avatar/src/embodiment.rs crates/avatar/src/gesture.rs crates/avatar/src/ik.rs crates/avatar/src/motion.rs crates/avatar/src/prediction.rs crates/avatar/src/quant.rs crates/avatar/src/skeleton.rs

/root/repo/target/release/deps/libsvr_avatar-d9fa20a3c024a255.rlib: crates/avatar/src/lib.rs crates/avatar/src/codec.rs crates/avatar/src/embodiment.rs crates/avatar/src/gesture.rs crates/avatar/src/ik.rs crates/avatar/src/motion.rs crates/avatar/src/prediction.rs crates/avatar/src/quant.rs crates/avatar/src/skeleton.rs

/root/repo/target/release/deps/libsvr_avatar-d9fa20a3c024a255.rmeta: crates/avatar/src/lib.rs crates/avatar/src/codec.rs crates/avatar/src/embodiment.rs crates/avatar/src/gesture.rs crates/avatar/src/ik.rs crates/avatar/src/motion.rs crates/avatar/src/prediction.rs crates/avatar/src/quant.rs crates/avatar/src/skeleton.rs

crates/avatar/src/lib.rs:
crates/avatar/src/codec.rs:
crates/avatar/src/embodiment.rs:
crates/avatar/src/gesture.rs:
crates/avatar/src/ik.rs:
crates/avatar/src/motion.rs:
crates/avatar/src/prediction.rs:
crates/avatar/src/quant.rs:
crates/avatar/src/skeleton.rs:
