/root/repo/target/release/examples/reproduce_all-416d779ccad544f1.d: examples/reproduce_all.rs

/root/repo/target/release/examples/reproduce_all-416d779ccad544f1: examples/reproduce_all.rs

examples/reproduce_all.rs:
