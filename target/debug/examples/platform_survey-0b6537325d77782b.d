/root/repo/target/debug/examples/platform_survey-0b6537325d77782b.d: examples/platform_survey.rs Cargo.toml

/root/repo/target/debug/examples/libplatform_survey-0b6537325d77782b.rmeta: examples/platform_survey.rs Cargo.toml

examples/platform_survey.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
