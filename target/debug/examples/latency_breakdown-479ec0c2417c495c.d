/root/repo/target/debug/examples/latency_breakdown-479ec0c2417c495c.d: examples/latency_breakdown.rs

/root/repo/target/debug/examples/latency_breakdown-479ec0c2417c495c: examples/latency_breakdown.rs

examples/latency_breakdown.rs:
