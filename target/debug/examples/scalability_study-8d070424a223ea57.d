/root/repo/target/debug/examples/scalability_study-8d070424a223ea57.d: examples/scalability_study.rs

/root/repo/target/debug/examples/scalability_study-8d070424a223ea57: examples/scalability_study.rs

examples/scalability_study.rs:
