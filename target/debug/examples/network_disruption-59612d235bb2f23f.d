/root/repo/target/debug/examples/network_disruption-59612d235bb2f23f.d: examples/network_disruption.rs

/root/repo/target/debug/examples/network_disruption-59612d235bb2f23f: examples/network_disruption.rs

examples/network_disruption.rs:
