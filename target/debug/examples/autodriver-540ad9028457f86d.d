/root/repo/target/debug/examples/autodriver-540ad9028457f86d.d: examples/autodriver.rs Cargo.toml

/root/repo/target/debug/examples/libautodriver-540ad9028457f86d.rmeta: examples/autodriver.rs Cargo.toml

examples/autodriver.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
