/root/repo/target/debug/examples/export_csv-859364c82068e341.d: examples/export_csv.rs

/root/repo/target/debug/examples/export_csv-859364c82068e341: examples/export_csv.rs

examples/export_csv.rs:
