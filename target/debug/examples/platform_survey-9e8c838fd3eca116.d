/root/repo/target/debug/examples/platform_survey-9e8c838fd3eca116.d: examples/platform_survey.rs

/root/repo/target/debug/examples/platform_survey-9e8c838fd3eca116: examples/platform_survey.rs

examples/platform_survey.rs:
