/root/repo/target/debug/examples/latency_breakdown-9d98a098fd46ac99.d: examples/latency_breakdown.rs Cargo.toml

/root/repo/target/debug/examples/liblatency_breakdown-9d98a098fd46ac99.rmeta: examples/latency_breakdown.rs Cargo.toml

examples/latency_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
