/root/repo/target/debug/examples/reproduce_all-9acbc8358fda8bc3.d: examples/reproduce_all.rs Cargo.toml

/root/repo/target/debug/examples/libreproduce_all-9acbc8358fda8bc3.rmeta: examples/reproduce_all.rs Cargo.toml

examples/reproduce_all.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
