/root/repo/target/debug/examples/reproduce_all-7d094bb6f37edd6f.d: examples/reproduce_all.rs

/root/repo/target/debug/examples/reproduce_all-7d094bb6f37edd6f: examples/reproduce_all.rs

examples/reproduce_all.rs:
