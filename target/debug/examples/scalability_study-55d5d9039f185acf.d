/root/repo/target/debug/examples/scalability_study-55d5d9039f185acf.d: examples/scalability_study.rs Cargo.toml

/root/repo/target/debug/examples/libscalability_study-55d5d9039f185acf.rmeta: examples/scalability_study.rs Cargo.toml

examples/scalability_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
