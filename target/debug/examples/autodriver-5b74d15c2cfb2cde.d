/root/repo/target/debug/examples/autodriver-5b74d15c2cfb2cde.d: examples/autodriver.rs

/root/repo/target/debug/examples/autodriver-5b74d15c2cfb2cde: examples/autodriver.rs

examples/autodriver.rs:
