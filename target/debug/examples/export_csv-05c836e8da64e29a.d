/root/repo/target/debug/examples/export_csv-05c836e8da64e29a.d: examples/export_csv.rs Cargo.toml

/root/repo/target/debug/examples/libexport_csv-05c836e8da64e29a.rmeta: examples/export_csv.rs Cargo.toml

examples/export_csv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
