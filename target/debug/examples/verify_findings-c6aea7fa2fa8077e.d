/root/repo/target/debug/examples/verify_findings-c6aea7fa2fa8077e.d: examples/verify_findings.rs

/root/repo/target/debug/examples/verify_findings-c6aea7fa2fa8077e: examples/verify_findings.rs

examples/verify_findings.rs:
