/root/repo/target/debug/examples/network_disruption-4385bd08903158b4.d: examples/network_disruption.rs Cargo.toml

/root/repo/target/debug/examples/libnetwork_disruption-4385bd08903158b4.rmeta: examples/network_disruption.rs Cargo.toml

examples/network_disruption.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
