/root/repo/target/debug/examples/quickstart-7b9ed096177177b9.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7b9ed096177177b9: examples/quickstart.rs

examples/quickstart.rs:
