/root/repo/target/debug/examples/verify_findings-587319394e9373c3.d: examples/verify_findings.rs Cargo.toml

/root/repo/target/debug/examples/libverify_findings-587319394e9373c3.rmeta: examples/verify_findings.rs Cargo.toml

examples/verify_findings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
