/root/repo/target/debug/deps/engine-568a481696b3adb0.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/debug/deps/libengine-568a481696b3adb0.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
