/root/repo/target/debug/deps/paper_findings-79230fe83b47d5c0.d: tests/paper_findings.rs

/root/repo/target/debug/deps/paper_findings-79230fe83b47d5c0: tests/paper_findings.rs

tests/paper_findings.rs:
