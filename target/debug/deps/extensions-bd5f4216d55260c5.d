/root/repo/target/debug/deps/extensions-bd5f4216d55260c5.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-bd5f4216d55260c5: tests/extensions.rs

tests/extensions.rs:
