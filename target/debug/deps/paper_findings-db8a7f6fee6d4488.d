/root/repo/target/debug/deps/paper_findings-db8a7f6fee6d4488.d: tests/paper_findings.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_findings-db8a7f6fee6d4488.rmeta: tests/paper_findings.rs Cargo.toml

tests/paper_findings.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
