/root/repo/target/debug/deps/svr_geo-9966167d82bdbbc7.d: crates/geo/src/lib.rs crates/geo/src/coords.rs crates/geo/src/detect.rs crates/geo/src/dns.rs crates/geo/src/pools.rs crates/geo/src/sites.rs crates/geo/src/traceroute.rs crates/geo/src/whois.rs

/root/repo/target/debug/deps/svr_geo-9966167d82bdbbc7: crates/geo/src/lib.rs crates/geo/src/coords.rs crates/geo/src/detect.rs crates/geo/src/dns.rs crates/geo/src/pools.rs crates/geo/src/sites.rs crates/geo/src/traceroute.rs crates/geo/src/whois.rs

crates/geo/src/lib.rs:
crates/geo/src/coords.rs:
crates/geo/src/detect.rs:
crates/geo/src/dns.rs:
crates/geo/src/pools.rs:
crates/geo/src/sites.rs:
crates/geo/src/traceroute.rs:
crates/geo/src/whois.rs:
