/root/repo/target/debug/deps/metaverse_measurement-b52edb0cc788ac92.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmetaverse_measurement-b52edb0cc788ac92.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
