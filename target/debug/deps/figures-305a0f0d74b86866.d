/root/repo/target/debug/deps/figures-305a0f0d74b86866.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-305a0f0d74b86866: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
