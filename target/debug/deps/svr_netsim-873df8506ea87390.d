/root/repo/target/debug/deps/svr_netsim-873df8506ea87390.d: crates/netsim/src/lib.rs crates/netsim/src/buf.rs crates/netsim/src/capture.rs crates/netsim/src/counters.rs crates/netsim/src/flow.rs crates/netsim/src/link.rs crates/netsim/src/netem.rs crates/netsim/src/network.rs crates/netsim/src/node.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/queue.rs crates/netsim/src/rng.rs crates/netsim/src/time.rs crates/netsim/src/units.rs crates/netsim/src/wire.rs

/root/repo/target/debug/deps/libsvr_netsim-873df8506ea87390.rlib: crates/netsim/src/lib.rs crates/netsim/src/buf.rs crates/netsim/src/capture.rs crates/netsim/src/counters.rs crates/netsim/src/flow.rs crates/netsim/src/link.rs crates/netsim/src/netem.rs crates/netsim/src/network.rs crates/netsim/src/node.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/queue.rs crates/netsim/src/rng.rs crates/netsim/src/time.rs crates/netsim/src/units.rs crates/netsim/src/wire.rs

/root/repo/target/debug/deps/libsvr_netsim-873df8506ea87390.rmeta: crates/netsim/src/lib.rs crates/netsim/src/buf.rs crates/netsim/src/capture.rs crates/netsim/src/counters.rs crates/netsim/src/flow.rs crates/netsim/src/link.rs crates/netsim/src/netem.rs crates/netsim/src/network.rs crates/netsim/src/node.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/queue.rs crates/netsim/src/rng.rs crates/netsim/src/time.rs crates/netsim/src/units.rs crates/netsim/src/wire.rs

crates/netsim/src/lib.rs:
crates/netsim/src/buf.rs:
crates/netsim/src/capture.rs:
crates/netsim/src/counters.rs:
crates/netsim/src/flow.rs:
crates/netsim/src/link.rs:
crates/netsim/src/netem.rs:
crates/netsim/src/network.rs:
crates/netsim/src/node.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/pcap.rs:
crates/netsim/src/queue.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/time.rs:
crates/netsim/src/units.rs:
crates/netsim/src/wire.rs:
