/root/repo/target/debug/deps/svr_platform-010a70a8692b1a76.d: crates/platform/src/lib.rs crates/platform/src/autodriver.rs crates/platform/src/config.rs crates/platform/src/client_app.rs crates/platform/src/features.rs crates/platform/src/game.rs crates/platform/src/server.rs crates/platform/src/session.rs crates/platform/src/stream.rs Cargo.toml

/root/repo/target/debug/deps/libsvr_platform-010a70a8692b1a76.rmeta: crates/platform/src/lib.rs crates/platform/src/autodriver.rs crates/platform/src/config.rs crates/platform/src/client_app.rs crates/platform/src/features.rs crates/platform/src/game.rs crates/platform/src/server.rs crates/platform/src/session.rs crates/platform/src/stream.rs Cargo.toml

crates/platform/src/lib.rs:
crates/platform/src/autodriver.rs:
crates/platform/src/config.rs:
crates/platform/src/client_app.rs:
crates/platform/src/features.rs:
crates/platform/src/game.rs:
crates/platform/src/server.rs:
crates/platform/src/session.rs:
crates/platform/src/stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
