/root/repo/target/debug/deps/svr_transport-abb5c9af3a504292.d: crates/transport/src/lib.rs crates/transport/src/http.rs crates/transport/src/ping.rs crates/transport/src/rtp.rs crates/transport/src/tcp.rs crates/transport/src/tls.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/svr_transport-abb5c9af3a504292: crates/transport/src/lib.rs crates/transport/src/http.rs crates/transport/src/ping.rs crates/transport/src/rtp.rs crates/transport/src/tcp.rs crates/transport/src/tls.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/http.rs:
crates/transport/src/ping.rs:
crates/transport/src/rtp.rs:
crates/transport/src/tcp.rs:
crates/transport/src/tls.rs:
crates/transport/src/udp.rs:
