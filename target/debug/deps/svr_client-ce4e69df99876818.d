/root/repo/target/debug/deps/svr_client-ce4e69df99876818.d: crates/client/src/lib.rs crates/client/src/battery.rs crates/client/src/device.rs crates/client/src/monitor.rs crates/client/src/render.rs crates/client/src/resources.rs Cargo.toml

/root/repo/target/debug/deps/libsvr_client-ce4e69df99876818.rmeta: crates/client/src/lib.rs crates/client/src/battery.rs crates/client/src/device.rs crates/client/src/monitor.rs crates/client/src/render.rs crates/client/src/resources.rs Cargo.toml

crates/client/src/lib.rs:
crates/client/src/battery.rs:
crates/client/src/device.rs:
crates/client/src/monitor.rs:
crates/client/src/render.rs:
crates/client/src/resources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
