/root/repo/target/debug/deps/svr_platform-43d3578b4653d1de.d: crates/platform/src/lib.rs crates/platform/src/autodriver.rs crates/platform/src/config.rs crates/platform/src/client_app.rs crates/platform/src/features.rs crates/platform/src/game.rs crates/platform/src/server.rs crates/platform/src/session.rs crates/platform/src/stream.rs

/root/repo/target/debug/deps/svr_platform-43d3578b4653d1de: crates/platform/src/lib.rs crates/platform/src/autodriver.rs crates/platform/src/config.rs crates/platform/src/client_app.rs crates/platform/src/features.rs crates/platform/src/game.rs crates/platform/src/server.rs crates/platform/src/session.rs crates/platform/src/stream.rs

crates/platform/src/lib.rs:
crates/platform/src/autodriver.rs:
crates/platform/src/config.rs:
crates/platform/src/client_app.rs:
crates/platform/src/features.rs:
crates/platform/src/game.rs:
crates/platform/src/server.rs:
crates/platform/src/session.rs:
crates/platform/src/stream.rs:
