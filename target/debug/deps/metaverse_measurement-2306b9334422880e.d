/root/repo/target/debug/deps/metaverse_measurement-2306b9334422880e.d: src/lib.rs

/root/repo/target/debug/deps/metaverse_measurement-2306b9334422880e: src/lib.rs

src/lib.rs:
