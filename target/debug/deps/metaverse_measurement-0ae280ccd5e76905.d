/root/repo/target/debug/deps/metaverse_measurement-0ae280ccd5e76905.d: src/lib.rs

/root/repo/target/debug/deps/metaverse_measurement-0ae280ccd5e76905: src/lib.rs

src/lib.rs:
