/root/repo/target/debug/deps/disruption-1ab7d254abe9ec38.d: crates/bench/benches/disruption.rs Cargo.toml

/root/repo/target/debug/deps/libdisruption-1ab7d254abe9ec38.rmeta: crates/bench/benches/disruption.rs Cargo.toml

crates/bench/benches/disruption.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
