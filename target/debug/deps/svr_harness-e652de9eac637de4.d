/root/repo/target/debug/deps/svr_harness-e652de9eac637de4.d: crates/harness/src/lib.rs crates/harness/src/experiment.rs crates/harness/src/json.rs crates/harness/src/registry.rs crates/harness/src/runner.rs crates/harness/src/scheduler.rs crates/harness/src/telemetry.rs

/root/repo/target/debug/deps/libsvr_harness-e652de9eac637de4.rlib: crates/harness/src/lib.rs crates/harness/src/experiment.rs crates/harness/src/json.rs crates/harness/src/registry.rs crates/harness/src/runner.rs crates/harness/src/scheduler.rs crates/harness/src/telemetry.rs

/root/repo/target/debug/deps/libsvr_harness-e652de9eac637de4.rmeta: crates/harness/src/lib.rs crates/harness/src/experiment.rs crates/harness/src/json.rs crates/harness/src/registry.rs crates/harness/src/runner.rs crates/harness/src/scheduler.rs crates/harness/src/telemetry.rs

crates/harness/src/lib.rs:
crates/harness/src/experiment.rs:
crates/harness/src/json.rs:
crates/harness/src/registry.rs:
crates/harness/src/runner.rs:
crates/harness/src/scheduler.rs:
crates/harness/src/telemetry.rs:
