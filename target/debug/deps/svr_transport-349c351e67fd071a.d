/root/repo/target/debug/deps/svr_transport-349c351e67fd071a.d: crates/transport/src/lib.rs crates/transport/src/http.rs crates/transport/src/ping.rs crates/transport/src/rtp.rs crates/transport/src/tcp.rs crates/transport/src/tls.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/libsvr_transport-349c351e67fd071a.rlib: crates/transport/src/lib.rs crates/transport/src/http.rs crates/transport/src/ping.rs crates/transport/src/rtp.rs crates/transport/src/tcp.rs crates/transport/src/tls.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/libsvr_transport-349c351e67fd071a.rmeta: crates/transport/src/lib.rs crates/transport/src/http.rs crates/transport/src/ping.rs crates/transport/src/rtp.rs crates/transport/src/tcp.rs crates/transport/src/tls.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/http.rs:
crates/transport/src/ping.rs:
crates/transport/src/rtp.rs:
crates/transport/src/tcp.rs:
crates/transport/src/tls.rs:
crates/transport/src/udp.rs:
