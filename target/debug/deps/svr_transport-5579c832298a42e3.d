/root/repo/target/debug/deps/svr_transport-5579c832298a42e3.d: crates/transport/src/lib.rs crates/transport/src/http.rs crates/transport/src/ping.rs crates/transport/src/rtp.rs crates/transport/src/tcp.rs crates/transport/src/tls.rs crates/transport/src/udp.rs Cargo.toml

/root/repo/target/debug/deps/libsvr_transport-5579c832298a42e3.rmeta: crates/transport/src/lib.rs crates/transport/src/http.rs crates/transport/src/ping.rs crates/transport/src/rtp.rs crates/transport/src/tcp.rs crates/transport/src/tls.rs crates/transport/src/udp.rs Cargo.toml

crates/transport/src/lib.rs:
crates/transport/src/http.rs:
crates/transport/src/ping.rs:
crates/transport/src/rtp.rs:
crates/transport/src/tcp.rs:
crates/transport/src/tls.rs:
crates/transport/src/udp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
