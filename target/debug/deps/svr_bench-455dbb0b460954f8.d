/root/repo/target/debug/deps/svr_bench-455dbb0b460954f8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/svr_bench-455dbb0b460954f8: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
