/root/repo/target/debug/deps/svr_core-c9a52247a5e7b209.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/clocksync.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/disruption.rs crates/core/src/experiments/fig11.rs crates/core/src/experiments/fig12.rs crates/core/src/experiments/fig13.rs crates/core/src/experiments/fig2.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/experiments/table4.rs crates/core/src/experiments/takeaways.rs crates/core/src/experiments/vantage.rs crates/core/src/experiments/viewport.rs crates/core/src/latency.rs crates/core/src/report.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libsvr_core-c9a52247a5e7b209.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/clocksync.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/disruption.rs crates/core/src/experiments/fig11.rs crates/core/src/experiments/fig12.rs crates/core/src/experiments/fig13.rs crates/core/src/experiments/fig2.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/experiments/table4.rs crates/core/src/experiments/takeaways.rs crates/core/src/experiments/vantage.rs crates/core/src/experiments/viewport.rs crates/core/src/latency.rs crates/core/src/report.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/clocksync.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/ablations.rs:
crates/core/src/experiments/disruption.rs:
crates/core/src/experiments/fig11.rs:
crates/core/src/experiments/fig12.rs:
crates/core/src/experiments/fig13.rs:
crates/core/src/experiments/fig2.rs:
crates/core/src/experiments/fig3.rs:
crates/core/src/experiments/fig6.rs:
crates/core/src/experiments/fig7.rs:
crates/core/src/experiments/fig8.rs:
crates/core/src/experiments/fig9.rs:
crates/core/src/experiments/table1.rs:
crates/core/src/experiments/table2.rs:
crates/core/src/experiments/table3.rs:
crates/core/src/experiments/table4.rs:
crates/core/src/experiments/takeaways.rs:
crates/core/src/experiments/vantage.rs:
crates/core/src/experiments/viewport.rs:
crates/core/src/latency.rs:
crates/core/src/report.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
