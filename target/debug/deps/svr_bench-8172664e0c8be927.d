/root/repo/target/debug/deps/svr_bench-8172664e0c8be927.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsvr_bench-8172664e0c8be927.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsvr_bench-8172664e0c8be927.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
