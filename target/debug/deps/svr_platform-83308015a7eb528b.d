/root/repo/target/debug/deps/svr_platform-83308015a7eb528b.d: crates/platform/src/lib.rs crates/platform/src/autodriver.rs crates/platform/src/config.rs crates/platform/src/client_app.rs crates/platform/src/features.rs crates/platform/src/game.rs crates/platform/src/server.rs crates/platform/src/session.rs crates/platform/src/stream.rs

/root/repo/target/debug/deps/libsvr_platform-83308015a7eb528b.rlib: crates/platform/src/lib.rs crates/platform/src/autodriver.rs crates/platform/src/config.rs crates/platform/src/client_app.rs crates/platform/src/features.rs crates/platform/src/game.rs crates/platform/src/server.rs crates/platform/src/session.rs crates/platform/src/stream.rs

/root/repo/target/debug/deps/libsvr_platform-83308015a7eb528b.rmeta: crates/platform/src/lib.rs crates/platform/src/autodriver.rs crates/platform/src/config.rs crates/platform/src/client_app.rs crates/platform/src/features.rs crates/platform/src/game.rs crates/platform/src/server.rs crates/platform/src/session.rs crates/platform/src/stream.rs

crates/platform/src/lib.rs:
crates/platform/src/autodriver.rs:
crates/platform/src/config.rs:
crates/platform/src/client_app.rs:
crates/platform/src/features.rs:
crates/platform/src/game.rs:
crates/platform/src/server.rs:
crates/platform/src/session.rs:
crates/platform/src/stream.rs:
