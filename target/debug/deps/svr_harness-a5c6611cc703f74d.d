/root/repo/target/debug/deps/svr_harness-a5c6611cc703f74d.d: crates/harness/src/lib.rs crates/harness/src/experiment.rs crates/harness/src/json.rs crates/harness/src/registry.rs crates/harness/src/runner.rs crates/harness/src/scheduler.rs crates/harness/src/telemetry.rs crates/harness/src/../../core/src/experiments/mod.rs

/root/repo/target/debug/deps/svr_harness-a5c6611cc703f74d: crates/harness/src/lib.rs crates/harness/src/experiment.rs crates/harness/src/json.rs crates/harness/src/registry.rs crates/harness/src/runner.rs crates/harness/src/scheduler.rs crates/harness/src/telemetry.rs crates/harness/src/../../core/src/experiments/mod.rs

crates/harness/src/lib.rs:
crates/harness/src/experiment.rs:
crates/harness/src/json.rs:
crates/harness/src/registry.rs:
crates/harness/src/runner.rs:
crates/harness/src/scheduler.rs:
crates/harness/src/telemetry.rs:
crates/harness/src/../../core/src/experiments/mod.rs:
