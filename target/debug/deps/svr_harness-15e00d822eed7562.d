/root/repo/target/debug/deps/svr_harness-15e00d822eed7562.d: crates/harness/src/lib.rs crates/harness/src/experiment.rs crates/harness/src/json.rs crates/harness/src/registry.rs crates/harness/src/runner.rs crates/harness/src/scheduler.rs crates/harness/src/telemetry.rs crates/harness/src/../../core/src/experiments/mod.rs Cargo.toml

/root/repo/target/debug/deps/libsvr_harness-15e00d822eed7562.rmeta: crates/harness/src/lib.rs crates/harness/src/experiment.rs crates/harness/src/json.rs crates/harness/src/registry.rs crates/harness/src/runner.rs crates/harness/src/scheduler.rs crates/harness/src/telemetry.rs crates/harness/src/../../core/src/experiments/mod.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/experiment.rs:
crates/harness/src/json.rs:
crates/harness/src/registry.rs:
crates/harness/src/runner.rs:
crates/harness/src/scheduler.rs:
crates/harness/src/telemetry.rs:
crates/harness/src/../../core/src/experiments/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
