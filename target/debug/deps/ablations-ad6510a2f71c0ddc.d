/root/repo/target/debug/deps/ablations-ad6510a2f71c0ddc.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-ad6510a2f71c0ddc: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
