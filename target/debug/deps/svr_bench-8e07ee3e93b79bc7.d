/root/repo/target/debug/deps/svr_bench-8e07ee3e93b79bc7.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsvr_bench-8e07ee3e93b79bc7.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
