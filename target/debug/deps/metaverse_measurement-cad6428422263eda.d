/root/repo/target/debug/deps/metaverse_measurement-cad6428422263eda.d: src/lib.rs

/root/repo/target/debug/deps/libmetaverse_measurement-cad6428422263eda.rlib: src/lib.rs

/root/repo/target/debug/deps/libmetaverse_measurement-cad6428422263eda.rmeta: src/lib.rs

src/lib.rs:
