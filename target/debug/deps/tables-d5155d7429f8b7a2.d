/root/repo/target/debug/deps/tables-d5155d7429f8b7a2.d: crates/bench/benches/tables.rs

/root/repo/target/debug/deps/tables-d5155d7429f8b7a2: crates/bench/benches/tables.rs

crates/bench/benches/tables.rs:
