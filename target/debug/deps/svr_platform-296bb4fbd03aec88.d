/root/repo/target/debug/deps/svr_platform-296bb4fbd03aec88.d: crates/platform/src/lib.rs crates/platform/src/autodriver.rs crates/platform/src/config.rs crates/platform/src/client_app.rs crates/platform/src/features.rs crates/platform/src/game.rs crates/platform/src/server.rs crates/platform/src/session.rs crates/platform/src/stream.rs

/root/repo/target/debug/deps/libsvr_platform-296bb4fbd03aec88.rlib: crates/platform/src/lib.rs crates/platform/src/autodriver.rs crates/platform/src/config.rs crates/platform/src/client_app.rs crates/platform/src/features.rs crates/platform/src/game.rs crates/platform/src/server.rs crates/platform/src/session.rs crates/platform/src/stream.rs

/root/repo/target/debug/deps/libsvr_platform-296bb4fbd03aec88.rmeta: crates/platform/src/lib.rs crates/platform/src/autodriver.rs crates/platform/src/config.rs crates/platform/src/client_app.rs crates/platform/src/features.rs crates/platform/src/game.rs crates/platform/src/server.rs crates/platform/src/session.rs crates/platform/src/stream.rs

crates/platform/src/lib.rs:
crates/platform/src/autodriver.rs:
crates/platform/src/config.rs:
crates/platform/src/client_app.rs:
crates/platform/src/features.rs:
crates/platform/src/game.rs:
crates/platform/src/server.rs:
crates/platform/src/session.rs:
crates/platform/src/stream.rs:
