/root/repo/target/debug/deps/svr_client-a21970ae1327ae17.d: crates/client/src/lib.rs crates/client/src/battery.rs crates/client/src/device.rs crates/client/src/monitor.rs crates/client/src/render.rs crates/client/src/resources.rs

/root/repo/target/debug/deps/libsvr_client-a21970ae1327ae17.rlib: crates/client/src/lib.rs crates/client/src/battery.rs crates/client/src/device.rs crates/client/src/monitor.rs crates/client/src/render.rs crates/client/src/resources.rs

/root/repo/target/debug/deps/libsvr_client-a21970ae1327ae17.rmeta: crates/client/src/lib.rs crates/client/src/battery.rs crates/client/src/device.rs crates/client/src/monitor.rs crates/client/src/render.rs crates/client/src/resources.rs

crates/client/src/lib.rs:
crates/client/src/battery.rs:
crates/client/src/device.rs:
crates/client/src/monitor.rs:
crates/client/src/render.rs:
crates/client/src/resources.rs:
