/root/repo/target/debug/deps/svr_avatar-377620f6e4cbae83.d: crates/avatar/src/lib.rs crates/avatar/src/codec.rs crates/avatar/src/embodiment.rs crates/avatar/src/gesture.rs crates/avatar/src/ik.rs crates/avatar/src/motion.rs crates/avatar/src/prediction.rs crates/avatar/src/quant.rs crates/avatar/src/skeleton.rs

/root/repo/target/debug/deps/svr_avatar-377620f6e4cbae83: crates/avatar/src/lib.rs crates/avatar/src/codec.rs crates/avatar/src/embodiment.rs crates/avatar/src/gesture.rs crates/avatar/src/ik.rs crates/avatar/src/motion.rs crates/avatar/src/prediction.rs crates/avatar/src/quant.rs crates/avatar/src/skeleton.rs

crates/avatar/src/lib.rs:
crates/avatar/src/codec.rs:
crates/avatar/src/embodiment.rs:
crates/avatar/src/gesture.rs:
crates/avatar/src/ik.rs:
crates/avatar/src/motion.rs:
crates/avatar/src/prediction.rs:
crates/avatar/src/quant.rs:
crates/avatar/src/skeleton.rs:
