/root/repo/target/debug/deps/svr_bench-623ebd5705bc7962.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsvr_bench-623ebd5705bc7962.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsvr_bench-623ebd5705bc7962.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
