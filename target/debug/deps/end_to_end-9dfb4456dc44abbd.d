/root/repo/target/debug/deps/end_to_end-9dfb4456dc44abbd.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9dfb4456dc44abbd: tests/end_to_end.rs

tests/end_to_end.rs:
