/root/repo/target/debug/deps/metaverse_measurement-5a21152c8dc01f6f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmetaverse_measurement-5a21152c8dc01f6f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
