/root/repo/target/debug/deps/svr_bench-40f203425a62b581.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/svr_bench-40f203425a62b581: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
