/root/repo/target/debug/deps/svr_netsim-a61ec7ae3a5f1b28.d: crates/netsim/src/lib.rs crates/netsim/src/buf.rs crates/netsim/src/capture.rs crates/netsim/src/counters.rs crates/netsim/src/flow.rs crates/netsim/src/link.rs crates/netsim/src/netem.rs crates/netsim/src/network.rs crates/netsim/src/node.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/queue.rs crates/netsim/src/rng.rs crates/netsim/src/time.rs crates/netsim/src/units.rs crates/netsim/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libsvr_netsim-a61ec7ae3a5f1b28.rmeta: crates/netsim/src/lib.rs crates/netsim/src/buf.rs crates/netsim/src/capture.rs crates/netsim/src/counters.rs crates/netsim/src/flow.rs crates/netsim/src/link.rs crates/netsim/src/netem.rs crates/netsim/src/network.rs crates/netsim/src/node.rs crates/netsim/src/packet.rs crates/netsim/src/pcap.rs crates/netsim/src/queue.rs crates/netsim/src/rng.rs crates/netsim/src/time.rs crates/netsim/src/units.rs crates/netsim/src/wire.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/buf.rs:
crates/netsim/src/capture.rs:
crates/netsim/src/counters.rs:
crates/netsim/src/flow.rs:
crates/netsim/src/link.rs:
crates/netsim/src/netem.rs:
crates/netsim/src/network.rs:
crates/netsim/src/node.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/pcap.rs:
crates/netsim/src/queue.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/time.rs:
crates/netsim/src/units.rs:
crates/netsim/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
