/root/repo/target/debug/deps/experiment_smoke-9340404def4ea92a.d: tests/experiment_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libexperiment_smoke-9340404def4ea92a.rmeta: tests/experiment_smoke.rs Cargo.toml

tests/experiment_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
