/root/repo/target/debug/deps/extensions-1a264843d0fbdd7f.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-1a264843d0fbdd7f.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
