/root/repo/target/debug/deps/svr_harness-4bf2fb483238c95f.d: crates/harness/src/lib.rs crates/harness/src/experiment.rs crates/harness/src/json.rs crates/harness/src/registry.rs crates/harness/src/runner.rs crates/harness/src/scheduler.rs crates/harness/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/libsvr_harness-4bf2fb483238c95f.rmeta: crates/harness/src/lib.rs crates/harness/src/experiment.rs crates/harness/src/json.rs crates/harness/src/registry.rs crates/harness/src/runner.rs crates/harness/src/scheduler.rs crates/harness/src/telemetry.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/experiment.rs:
crates/harness/src/json.rs:
crates/harness/src/registry.rs:
crates/harness/src/runner.rs:
crates/harness/src/scheduler.rs:
crates/harness/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
