/root/repo/target/debug/deps/experiment_smoke-e0a52c857b91c750.d: tests/experiment_smoke.rs

/root/repo/target/debug/deps/experiment_smoke-e0a52c857b91c750: tests/experiment_smoke.rs

tests/experiment_smoke.rs:
