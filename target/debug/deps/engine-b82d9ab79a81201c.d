/root/repo/target/debug/deps/engine-b82d9ab79a81201c.d: crates/bench/benches/engine.rs

/root/repo/target/debug/deps/engine-b82d9ab79a81201c: crates/bench/benches/engine.rs

crates/bench/benches/engine.rs:
