/root/repo/target/debug/deps/determinism-19aaeb796a9337bf.d: crates/harness/tests/determinism.rs crates/harness/tests/../../core/src/experiments/mod.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-19aaeb796a9337bf.rmeta: crates/harness/tests/determinism.rs crates/harness/tests/../../core/src/experiments/mod.rs Cargo.toml

crates/harness/tests/determinism.rs:
crates/harness/tests/../../core/src/experiments/mod.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
