/root/repo/target/debug/deps/svr_client-9c9c4bd3d17a80ef.d: crates/client/src/lib.rs crates/client/src/battery.rs crates/client/src/device.rs crates/client/src/monitor.rs crates/client/src/render.rs crates/client/src/resources.rs

/root/repo/target/debug/deps/libsvr_client-9c9c4bd3d17a80ef.rlib: crates/client/src/lib.rs crates/client/src/battery.rs crates/client/src/device.rs crates/client/src/monitor.rs crates/client/src/render.rs crates/client/src/resources.rs

/root/repo/target/debug/deps/libsvr_client-9c9c4bd3d17a80ef.rmeta: crates/client/src/lib.rs crates/client/src/battery.rs crates/client/src/device.rs crates/client/src/monitor.rs crates/client/src/render.rs crates/client/src/resources.rs

crates/client/src/lib.rs:
crates/client/src/battery.rs:
crates/client/src/device.rs:
crates/client/src/monitor.rs:
crates/client/src/render.rs:
crates/client/src/resources.rs:
