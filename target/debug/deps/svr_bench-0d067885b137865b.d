/root/repo/target/debug/deps/svr_bench-0d067885b137865b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsvr_bench-0d067885b137865b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
