/root/repo/target/debug/deps/svr_client-9017bfd2802da328.d: crates/client/src/lib.rs crates/client/src/battery.rs crates/client/src/device.rs crates/client/src/monitor.rs crates/client/src/render.rs crates/client/src/resources.rs

/root/repo/target/debug/deps/svr_client-9017bfd2802da328: crates/client/src/lib.rs crates/client/src/battery.rs crates/client/src/device.rs crates/client/src/monitor.rs crates/client/src/render.rs crates/client/src/resources.rs

crates/client/src/lib.rs:
crates/client/src/battery.rs:
crates/client/src/device.rs:
crates/client/src/monitor.rs:
crates/client/src/render.rs:
crates/client/src/resources.rs:
