/root/repo/target/debug/deps/svr_transport-a0ba7c8a954e4f2f.d: crates/transport/src/lib.rs crates/transport/src/http.rs crates/transport/src/ping.rs crates/transport/src/rtp.rs crates/transport/src/tcp.rs crates/transport/src/tls.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/libsvr_transport-a0ba7c8a954e4f2f.rlib: crates/transport/src/lib.rs crates/transport/src/http.rs crates/transport/src/ping.rs crates/transport/src/rtp.rs crates/transport/src/tcp.rs crates/transport/src/tls.rs crates/transport/src/udp.rs

/root/repo/target/debug/deps/libsvr_transport-a0ba7c8a954e4f2f.rmeta: crates/transport/src/lib.rs crates/transport/src/http.rs crates/transport/src/ping.rs crates/transport/src/rtp.rs crates/transport/src/tcp.rs crates/transport/src/tls.rs crates/transport/src/udp.rs

crates/transport/src/lib.rs:
crates/transport/src/http.rs:
crates/transport/src/ping.rs:
crates/transport/src/rtp.rs:
crates/transport/src/tcp.rs:
crates/transport/src/tls.rs:
crates/transport/src/udp.rs:
