/root/repo/target/debug/deps/svr_geo-d30a0731f77bf5a0.d: crates/geo/src/lib.rs crates/geo/src/coords.rs crates/geo/src/detect.rs crates/geo/src/dns.rs crates/geo/src/pools.rs crates/geo/src/sites.rs crates/geo/src/traceroute.rs crates/geo/src/whois.rs Cargo.toml

/root/repo/target/debug/deps/libsvr_geo-d30a0731f77bf5a0.rmeta: crates/geo/src/lib.rs crates/geo/src/coords.rs crates/geo/src/detect.rs crates/geo/src/dns.rs crates/geo/src/pools.rs crates/geo/src/sites.rs crates/geo/src/traceroute.rs crates/geo/src/whois.rs Cargo.toml

crates/geo/src/lib.rs:
crates/geo/src/coords.rs:
crates/geo/src/detect.rs:
crates/geo/src/dns.rs:
crates/geo/src/pools.rs:
crates/geo/src/sites.rs:
crates/geo/src/traceroute.rs:
crates/geo/src/whois.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
