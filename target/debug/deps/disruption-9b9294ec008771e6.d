/root/repo/target/debug/deps/disruption-9b9294ec008771e6.d: crates/bench/benches/disruption.rs

/root/repo/target/debug/deps/disruption-9b9294ec008771e6: crates/bench/benches/disruption.rs

crates/bench/benches/disruption.rs:
