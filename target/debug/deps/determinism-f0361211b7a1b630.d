/root/repo/target/debug/deps/determinism-f0361211b7a1b630.d: crates/harness/tests/determinism.rs crates/harness/tests/../../core/src/experiments/mod.rs

/root/repo/target/debug/deps/determinism-f0361211b7a1b630: crates/harness/tests/determinism.rs crates/harness/tests/../../core/src/experiments/mod.rs

crates/harness/tests/determinism.rs:
crates/harness/tests/../../core/src/experiments/mod.rs:
