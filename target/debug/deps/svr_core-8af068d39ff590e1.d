/root/repo/target/debug/deps/svr_core-8af068d39ff590e1.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/clocksync.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/disruption.rs crates/core/src/experiments/fig11.rs crates/core/src/experiments/fig12.rs crates/core/src/experiments/fig13.rs crates/core/src/experiments/fig2.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/experiments/table4.rs crates/core/src/experiments/takeaways.rs crates/core/src/experiments/vantage.rs crates/core/src/experiments/viewport.rs crates/core/src/latency.rs crates/core/src/report.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/svr_core-8af068d39ff590e1: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/clocksync.rs crates/core/src/experiments/mod.rs crates/core/src/experiments/ablations.rs crates/core/src/experiments/disruption.rs crates/core/src/experiments/fig11.rs crates/core/src/experiments/fig12.rs crates/core/src/experiments/fig13.rs crates/core/src/experiments/fig2.rs crates/core/src/experiments/fig3.rs crates/core/src/experiments/fig6.rs crates/core/src/experiments/fig7.rs crates/core/src/experiments/fig8.rs crates/core/src/experiments/fig9.rs crates/core/src/experiments/table1.rs crates/core/src/experiments/table2.rs crates/core/src/experiments/table3.rs crates/core/src/experiments/table4.rs crates/core/src/experiments/takeaways.rs crates/core/src/experiments/vantage.rs crates/core/src/experiments/viewport.rs crates/core/src/latency.rs crates/core/src/report.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/clocksync.rs:
crates/core/src/experiments/mod.rs:
crates/core/src/experiments/ablations.rs:
crates/core/src/experiments/disruption.rs:
crates/core/src/experiments/fig11.rs:
crates/core/src/experiments/fig12.rs:
crates/core/src/experiments/fig13.rs:
crates/core/src/experiments/fig2.rs:
crates/core/src/experiments/fig3.rs:
crates/core/src/experiments/fig6.rs:
crates/core/src/experiments/fig7.rs:
crates/core/src/experiments/fig8.rs:
crates/core/src/experiments/fig9.rs:
crates/core/src/experiments/table1.rs:
crates/core/src/experiments/table2.rs:
crates/core/src/experiments/table3.rs:
crates/core/src/experiments/table4.rs:
crates/core/src/experiments/takeaways.rs:
crates/core/src/experiments/vantage.rs:
crates/core/src/experiments/viewport.rs:
crates/core/src/latency.rs:
crates/core/src/report.rs:
crates/core/src/stats.rs:
