/root/repo/target/debug/deps/svr_avatar-726f977c02e6810f.d: crates/avatar/src/lib.rs crates/avatar/src/codec.rs crates/avatar/src/embodiment.rs crates/avatar/src/gesture.rs crates/avatar/src/ik.rs crates/avatar/src/motion.rs crates/avatar/src/prediction.rs crates/avatar/src/quant.rs crates/avatar/src/skeleton.rs Cargo.toml

/root/repo/target/debug/deps/libsvr_avatar-726f977c02e6810f.rmeta: crates/avatar/src/lib.rs crates/avatar/src/codec.rs crates/avatar/src/embodiment.rs crates/avatar/src/gesture.rs crates/avatar/src/ik.rs crates/avatar/src/motion.rs crates/avatar/src/prediction.rs crates/avatar/src/quant.rs crates/avatar/src/skeleton.rs Cargo.toml

crates/avatar/src/lib.rs:
crates/avatar/src/codec.rs:
crates/avatar/src/embodiment.rs:
crates/avatar/src/gesture.rs:
crates/avatar/src/ik.rs:
crates/avatar/src/motion.rs:
crates/avatar/src/prediction.rs:
crates/avatar/src/quant.rs:
crates/avatar/src/skeleton.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
